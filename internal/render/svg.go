// Package render draws MCFS instances and solutions as standalone SVG
// documents — the counterpart of the paper's Figure 1/5 maps: the road
// network in grey, customers in red, candidate facilities in blue,
// selected facilities emphasized, and assignment links customer→facility.
package render

import (
	"fmt"
	"io"
	"math"

	"mcfs/internal/data"
)

// Style controls the rendered appearance. Zero values take defaults.
type Style struct {
	Width       int     // canvas width in px (default 900)
	NodeRadius  float64 // base node radius (default 1.2)
	DrawNetwork bool    // draw all network edges (default on via Default())
	DrawLinks   bool    // draw customer→facility assignment links
	Background  string  // css color (default white)
}

// Default returns the standard style.
func Default() Style {
	return Style{Width: 900, NodeRadius: 1.2, DrawNetwork: true, DrawLinks: true, Background: "#ffffff"}
}

// SVG renders the instance (and optionally its solution; sol may be nil)
// into w. The network must carry coordinates.
func SVG(w io.Writer, inst *data.Instance, sol *data.Solution, style Style) error {
	g := inst.G
	if !g.HasCoords() {
		return fmt.Errorf("render: network has no coordinates")
	}
	if style.Width <= 0 {
		style.Width = 900
	}
	if style.NodeRadius <= 0 {
		style.NodeRadius = 1.2
	}
	if style.Background == "" {
		style.Background = "#ffffff"
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for v := int32(0); v < int32(g.N()); v++ {
		x, y := g.Coord(v)
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	width := float64(style.Width)
	height := width * spanY / spanX
	const pad = 12.0
	sx := func(x float64) float64 { return pad + (x-minX)/spanX*(width-2*pad) }
	sy := func(y float64) float64 { return pad + (maxY-y)/spanY*(height-2*pad) } // flip y

	pf := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := pf(`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height+2*pad, width, height+2*pad); err != nil {
		return err
	}
	pf(`<rect width="100%%" height="100%%" fill="%s"/>`+"\n", style.Background)

	if style.DrawNetwork {
		pf(`<g stroke="#c8c8c8" stroke-width="0.5">` + "\n")
		for v := int32(0); v < int32(g.N()); v++ {
			x1, y1 := g.Coord(v)
			var err error
			g.Neighbors(v, func(u int32, _ int64) bool {
				if g.Directed() || v < u {
					x2, y2 := g.Coord(u)
					err = pf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n",
						sx(x1), sy(y1), sx(x2), sy(y2))
				}
				return err == nil
			})
			if err != nil {
				return err
			}
		}
		pf("</g>\n")
	}

	if sol != nil && style.DrawLinks {
		pf(`<g stroke="#7a5fb5" stroke-width="0.8" stroke-opacity="0.6">` + "\n")
		for i, j := range sol.Assignment {
			x1, y1 := g.Coord(inst.Customers[i])
			x2, y2 := g.Coord(inst.Facilities[j].Node)
			pf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n",
				sx(x1), sy(y1), sx(x2), sy(y2))
		}
		pf("</g>\n")
	}

	// Candidate facilities (blue, hollow), selected ones solid.
	selected := map[int]bool{}
	if sol != nil {
		for _, j := range sol.Selected {
			selected[j] = true
		}
	}
	pf(`<g>` + "\n")
	for j, f := range inst.Facilities {
		x, y := g.Coord(f.Node)
		r := style.NodeRadius * 2
		if selected[j] {
			pf(`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#1f5fbf"/>`+"\n", sx(x), sy(y), r*1.4)
		} else {
			pf(`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="#1f5fbf" stroke-width="0.8"/>`+"\n",
				sx(x), sy(y), r)
		}
	}
	pf("</g>\n<g>\n")
	for _, s := range inst.Customers {
		x, y := g.Coord(s)
		pf(`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#c8321e"/>`+"\n", sx(x), sy(y), style.NodeRadius*1.6)
	}
	pf("</g>\n")
	return pf("</svg>\n")
}
