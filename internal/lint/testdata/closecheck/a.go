// Package fixture exercises the closecheck rule (checked as if it
// lived under cmd/).
package fixture

import (
	"fmt"
	"os"
)

func bare(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "hello")
	f.Close() // want "discarded"
	return nil
}

func deferred(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // want "discards its error"
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return buf, err
}

func checked(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(f, "hello"); err != nil {
		//lint:ignore closecheck the write error dominates; close is best-effort cleanup here
		f.Close()
		return err
	}
	return f.Close()
}

func param(f *os.File) {
	f.Close() // want "discarded"
}

func alias(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	w := f
	w.Close() // want "discarded"
	return nil
}

func closure(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	fn := func() {
		f.Close() // want "discarded"
	}
	fn()
}

// Not an *os.File by any local evidence: out of scope.
type fakeFile struct{}

func (fakeFile) Close() {}

func notAFile() {
	var f fakeFile
	f.Close()
}
