// Package mcfs solves the Multicapacity Facility Selection problem — the
// hard, nonuniform capacitated k-median problem over a road network — as
// introduced by Logins, Karras and Jensen, "Multicapacity Facility
// Selection in Networks" (ICDE 2019).
//
// Given a weighted network, a set of customer locations, a catalogue of
// candidate facilities each with its own capacity, and a budget k, the
// task is to open at most k facilities and assign every customer to
// exactly one of them, within capacities, minimizing the total
// shortest-path distance between customers and their facilities.
//
// The primary solver is the paper's Wide Matching Algorithm (Solve):
// a scalable heuristic that interleaves an optimal incremental bipartite
// matching with a lazy-greedy set-cover selection. The package also
// provides the paper's baselines (SolveHilbert, SolveBRNN, SolveNaive),
// the Uniform-First strategy for nonuniform capacities
// (SolveUniformFirst), and exact solvers (SolveExact, SolveExhaustive)
// standing in for the paper's use of the Gurobi optimizer.
//
// Workload generators reproduce the paper's evaluation data: synthetic
// uniform/clustered networks (GenerateSynthetic), city-like road
// networks calibrated to the paper's Table III (GenerateCity), and the
// coworking/bike-sharing scenarios of §VII-F (NewCoworkingScenario,
// NewBikesScenario).
//
// A minimal end-to-end use:
//
//	g, _ := mcfs.GenerateSynthetic(mcfs.SyntheticConfig{N: 1000, Alpha: 2, Seed: 1})
//	rng := rand.New(rand.NewSource(2))
//	inst := &mcfs.Instance{
//		G:          g,
//		Customers:  mcfs.SampleCustomers(g, 100, rng),
//		Facilities: mcfs.SampleFacilities(g, 200, rng, mcfs.UniformCapacity(20)),
//		K:          10,
//	}
//	sol, err := mcfs.Solve(inst)
//	// sol.Selected, sol.Assignment, sol.Objective
package mcfs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"mcfs/internal/core"
	"mcfs/internal/data"
	"mcfs/internal/dynamic"
	"mcfs/internal/gen"
	"mcfs/internal/graph"
	"mcfs/internal/localsearch"
	"mcfs/internal/realsim"
	"mcfs/internal/render"
	"mcfs/internal/solver"
)

// Core model types. These are aliases of the internal implementations so
// that all packages in the module interoperate without conversion.
type (
	// Graph is an immutable weighted network in CSR form; build one with
	// NewGraphBuilder or a generator.
	Graph = graph.Graph
	// GraphBuilder accumulates edges and coordinates, then Builds a Graph.
	GraphBuilder = graph.Builder
	// Edge is a builder input edge.
	Edge = graph.Edge
	// Facility is a candidate facility location with a capacity.
	Facility = data.Facility
	// Instance is a full MCFS problem instance.
	Instance = data.Instance
	// Solution carries the selected facilities, the per-customer
	// assignment (facility indexes), and the total-distance objective.
	Solution = data.Solution
	// IterationStats describes one WMA iteration (progress reporting).
	IterationStats = core.IterationStats
)

// Inf is the distance reported for unreachable node pairs.
const Inf = graph.Inf

// Sentinel errors. Every entry point returns at most these well-known
// failures besides input-validation errors, so callers (and servers
// mapping errors onto protocol status codes) can switch on errors.Is:
//
//   - ErrInfeasible — the instance admits no feasible solution; returned
//     by every solver and by Reallocator operations that would overflow
//     the open capacity.
//   - ErrTimeout — SolveExact's time budget expired; also matches
//     context.DeadlineExceeded. Heuristic solvers surface a budget
//     expiry as plain context.DeadlineExceeded instead.
//   - ErrTooLarge — SolveExhaustive's subset cap was exceeded; the
//     instance is too large for enumeration, pick another algorithm.
//   - context.Canceled / context.DeadlineExceeded — the caller's context
//     fired mid-solve (Ctx variants only).

// ErrInfeasible is returned by every solver when no feasible solution
// exists (insufficient capacity under budget k in some network
// component).
var ErrInfeasible = data.ErrInfeasible

// ErrTooLarge is returned by SolveExhaustive (and AlgorithmExhaustive)
// when the number of k-subsets exceeds the enumeration cap — the
// instance is too large for exhaustive search.
var ErrTooLarge = solver.ErrTooLarge

// NewGraphBuilder returns a builder for a graph with n nodes; if
// directed is false every edge is traversable both ways.
func NewGraphBuilder(n int, directed bool) *GraphBuilder {
	return graph.NewBuilder(n, directed)
}

// Option tunes the solvers. Not every option affects every solver; each
// option documents where it applies (see also the option × solver table
// in DESIGN.md §9). Passing an inapplicable option is harmless — it is
// ignored.
type Option func(*options)

type options struct {
	core core.Options
	// exact-solver knobs
	timeBudget time.Duration
	nodeLimit  int
	seed       int64
	// err accumulates option-validation failures; buildOptions surfaces
	// it so a bad knob fails the solve instead of being silently ignored.
	err error
}

// WithProgress installs a per-iteration callback on runs of the WMA main
// loop (the paper's Fig. 12b statistics: covered customers, matching
// time, set-cover time). Applies to Solve and SolveUniformFirst (which
// run WMA directly). It has no effect on SolveHilbert, SolveBRNN,
// SolveNaive, SolveExact, SolveExhaustive, AssignToSelection, Improve,
// or NewReallocator — none of those run the instrumented loop (the exact
// solver's WMA warm start is deliberately silent).
func WithProgress(fn func(IterationStats)) Option {
	return func(o *options) { o.core.Progress = fn }
}

// WithRaiseAllDemands switches WMA to raising every customer's demand
// each iteration instead of only uncovered ones (an ablation of the
// paper's §IV-F policy). Applies to Solve, SolveUniformFirst and the
// WMA re-selections inside NewReallocator; other solvers ignore it.
func WithRaiseAllDemands() Option {
	return func(o *options) { o.core.Demand = core.DemandAll }
}

// WithArbitraryTieBreak disables the least-recently-used diversification
// in the set-cover heuristic (ablation). Applies to Solve,
// SolveUniformFirst, SolveNaive and NewReallocator — the solvers that
// run CheckCover; other solvers ignore it.
func WithArbitraryTieBreak() Option {
	return func(o *options) { o.core.TieBreak = core.TieArbitrary }
}

// WithExhaustiveMatching disables the matcher's early-stop optimization;
// results are identical, only more of the residual graph is scanned
// (ablation/diagnostics). Applies to every solver that runs the optimal
// bipartite matching: all except SolveNaive (whose point is to replace
// that matching with a greedy one).
func WithExhaustiveMatching() Option {
	return func(o *options) { o.core.Exhaustive = true }
}

// WithTimeBudget bounds a solve's wall-clock time. On SolveExact the
// budget is the branch-and-bound deadline: on expiry it returns its best
// incumbent alongside an error matching both ErrTimeout and
// context.DeadlineExceeded. On every other solver (and on the Ctx
// variants) the budget is sugar for a context deadline layered onto the
// caller's context: on expiry the solve stops promptly and returns
// context.DeadlineExceeded, with the incumbent semantics of the solver
// at hand (see "Timeouts & cancellation" in the README).
//
// The budget must be positive: a zero or negative budget is rejected at
// solve time with a descriptive error rather than silently meaning
// "unbounded" — callers that want no bound simply omit the option.
func WithTimeBudget(d time.Duration) Option {
	return func(o *options) {
		if d <= 0 {
			o.err = errors.Join(o.err, fmt.Errorf("mcfs: WithTimeBudget(%v): budget must be positive (omit the option for an unbounded solve)", d))
			return
		}
		o.timeBudget = d
	}
}

// WithNodeLimit bounds the exact solver's search-tree size. Applies to
// SolveExact only; other solvers have no notion of search nodes and
// ignore it.
//
// The limit must be positive: a zero or negative limit is rejected at
// solve time with a descriptive error rather than silently meaning
// "unbounded" — callers that want no bound simply omit the option.
func WithNodeLimit(n int) Option {
	return func(o *options) {
		if n <= 0 {
			o.err = errors.Join(o.err, fmt.Errorf("mcfs: WithNodeLimit(%d): limit must be positive (omit the option for an unbounded search)", n))
			return
		}
		o.nodeLimit = n
	}
}

// WithSeed seeds the randomized Naive baseline. Applies to SolveNaive
// only — every other solver in the package is deterministic by
// construction and ignores it.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed }
}

func buildOptions(opts []Option) (options, error) {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return o, o.err
}

// deadlineCtx layers the WithTimeBudget deadline (when set) onto the
// caller's context for the heuristic solvers; the returned cancel must
// always be called to release the timer.
func (o options) deadlineCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if o.timeBudget > 0 {
		return context.WithTimeout(ctx, o.timeBudget)
	}
	return ctx, func() {}
}

// Solve runs the Wide Matching Algorithm — the paper's primary
// contribution — and returns a feasible solution, or ErrInfeasible.
func Solve(inst *Instance, opts ...Option) (*Solution, error) {
	return SolveCtx(context.Background(), inst, opts...)
}

// SolveCtx is Solve with cooperative cancellation: the solve polls ctx
// throughout (per WMA iteration, per augmenting path, and inside long
// network searches) and returns promptly with ctx.Err() when it fires.
// WMA holds no feasible solution until its final assignment phase
// completes, so a cancelled run returns a nil Solution. An uncancelled
// run is byte-identical to Solve. WithTimeBudget adds a deadline to ctx.
func SolveCtx(ctx context.Context, inst *Instance, opts ...Option) (*Solution, error) {
	sol, _, err := AlgorithmWMA.Solve(ctx, inst, opts...)
	return sol, err
}

// SolveUniformFirst runs WMA with the Uniform-First strategy (§VII-F):
// facility locations are first chosen as if all capacities equaled the
// average, then the assignment is rebuilt under the true capacities.
func SolveUniformFirst(inst *Instance, opts ...Option) (*Solution, error) {
	return SolveUniformFirstCtx(context.Background(), inst, opts...)
}

// SolveUniformFirstCtx is SolveUniformFirst with cooperative
// cancellation; cancellation semantics match SolveCtx (nil Solution and
// ctx.Err(); cancellation never triggers the Direct-strategy fallback).
func SolveUniformFirstCtx(ctx context.Context, inst *Instance, opts ...Option) (*Solution, error) {
	sol, _, err := AlgorithmUniformFirst.Solve(ctx, inst, opts...)
	return sol, err
}

// SolveHilbert runs the Hilbert space-filling-curve bucketing baseline.
// The network must carry coordinates.
func SolveHilbert(inst *Instance, opts ...Option) (*Solution, error) {
	return SolveHilbertCtx(context.Background(), inst, opts...)
}

// SolveHilbertCtx is SolveHilbert with cooperative cancellation;
// cancellation semantics match SolveCtx (nil Solution and ctx.Err()).
func SolveHilbertCtx(ctx context.Context, inst *Instance, opts ...Option) (*Solution, error) {
	sol, _, err := AlgorithmHilbert.Solve(ctx, inst, opts...)
	return sol, err
}

// SolveBRNN runs the iterative bichromatic-reverse-nearest-neighbor
// (MaxSum) placement baseline.
func SolveBRNN(inst *Instance, opts ...Option) (*Solution, error) {
	return SolveBRNNCtx(context.Background(), inst, opts...)
}

// SolveBRNNCtx is SolveBRNN with cooperative cancellation; cancellation
// semantics match SolveCtx (nil Solution and ctx.Err()).
func SolveBRNNCtx(ctx context.Context, inst *Instance, opts ...Option) (*Solution, error) {
	sol, _, err := AlgorithmBRNN.Solve(ctx, inst, opts...)
	return sol, err
}

// SolveNaive runs WMA Naïve: the WMA loop with greedy, no-rewiring
// assignment. Seed it with WithSeed for reproducibility.
func SolveNaive(inst *Instance, opts ...Option) (*Solution, error) {
	return SolveNaiveCtx(context.Background(), inst, opts...)
}

// SolveNaiveCtx is SolveNaive with cooperative cancellation;
// cancellation semantics match SolveCtx (nil Solution and ctx.Err()).
func SolveNaiveCtx(ctx context.Context, inst *Instance, opts ...Option) (*Solution, error) {
	sol, _, err := AlgorithmNaive.Solve(ctx, inst, opts...)
	return sol, err
}

// ExactResult reports an exact solve: the solution, the number of
// explored branch-and-bound nodes, and whether optimality was proven
// (false only when a time or node budget cut the search short).
type ExactResult struct {
	Solution *Solution
	Nodes    int
	Optimal  bool
}

// ErrTimeout is returned by SolveExact when its time budget expires; the
// accompanying ExactResult still carries the best incumbent found. The
// error also matches context.DeadlineExceeded under errors.Is.
var ErrTimeout = solver.ErrTimeout

// SolveExact computes the optimal solution by branch and bound — this
// repository's stand-in for the paper's Gurobi runs. Like the paper's
// MIP solves it is exact but intractable beyond small instances; bound
// it with WithTimeBudget/WithNodeLimit to reproduce the "solver fails"
// regime.
func SolveExact(inst *Instance, opts ...Option) (*ExactResult, error) {
	return SolveExactCtx(context.Background(), inst, opts...)
}

// SolveExactCtx is SolveExact with cooperative cancellation. Unlike the
// heuristics, the branch-and-bound search holds a verified incumbent
// from its warm start onwards, so a cancelled run returns the best
// incumbent found so far (Optimal false) alongside ctx.Err() — exactly
// the contract of a WithTimeBudget expiry, whose error additionally
// matches ErrTimeout. The ExactResult is nil only when cancellation
// struck before any incumbent existed.
func SolveExactCtx(ctx context.Context, inst *Instance, opts ...Option) (*ExactResult, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	res, err := solver.BranchAndBoundCtx(ctx, inst, solver.Options{
		TimeBudget: o.timeBudget,
		NodeLimit:  o.nodeLimit,
	})
	if res == nil {
		return nil, err
	}
	return &ExactResult{Solution: res.Solution, Nodes: res.Nodes, Optimal: res.Optimal}, err
}

// SolveExhaustive enumerates every k-subset of facilities (feasible only
// for tiny instances; maxSubsets <= 0 means the default 1e6 cap). Used
// as the ground-truth yardstick in tests and sanity runs.
func SolveExhaustive(inst *Instance, maxSubsets int64) (*Solution, error) {
	return SolveExhaustiveCtx(context.Background(), inst, maxSubsets)
}

// SolveExhaustiveCtx is SolveExhaustive with cooperative cancellation,
// checked between subsets. Like SolveExactCtx it returns the best
// solution found before the cut (nil when none) alongside ctx.Err().
func SolveExhaustiveCtx(ctx context.Context, inst *Instance, maxSubsets int64) (*Solution, error) {
	return solver.ExhaustiveCtx(ctx, inst, maxSubsets)
}

// AssignToSelection computes the optimal assignment of all customers to
// a fixed facility selection (indexes into inst.Facilities) — the
// building block for custom selection strategies.
func AssignToSelection(inst *Instance, selected []int, opts ...Option) (*Solution, error) {
	return AssignToSelectionCtx(context.Background(), inst, selected, opts...)
}

// AssignToSelectionCtx is AssignToSelection with cooperative
// cancellation, checked per augmenting path; a cancelled run returns a
// nil Solution and ctx.Err(). WithTimeBudget adds a deadline to ctx.
func AssignToSelectionCtx(ctx context.Context, inst *Instance, selected []int, opts ...Option) (*Solution, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	ctx, cancel := o.deadlineCtx(ctx)
	defer cancel()
	return core.AssignToSelectionCtx(ctx, inst, selected, o.core)
}

// --- generators -----------------------------------------------------------

// SyntheticConfig parameterizes GenerateSynthetic (§VII-B).
type SyntheticConfig = gen.SyntheticConfig

// CityParams parameterizes GenerateCity; CityPreset returns calibrated
// parameters for the paper's four cities.
type CityParams = gen.CityParams

// CityStats reports Table III-style statistics of a network.
type CityStats = gen.CityStats

// CoworkingConfig parameterizes NewCoworkingScenario (§VII-F.1).
type CoworkingConfig = realsim.CoworkingConfig

// CoworkingScenario is generated coworking instance material.
type CoworkingScenario = realsim.CoworkingScenario

// DistrictConfig parameterizes DistrictCustomers (§VII-F.1b).
type DistrictConfig = realsim.DistrictConfig

// BikesConfig parameterizes NewBikesScenario (§VII-F.2).
type BikesConfig = realsim.BikesConfig

// BikesScenario is generated bike-sharing instance material.
type BikesScenario = realsim.BikesScenario

// Venue is a coworking candidate facility with occupancy and hours.
type Venue = realsim.Venue

// GenerateSynthetic builds a uniform or clustered synthetic network on
// the 10³×10³ square with the α-radius connection rule.
func GenerateSynthetic(cfg SyntheticConfig) (*Graph, error) { return gen.Synthetic(cfg) }

// CityPreset returns parameters calibrated to one of the paper's Table
// III cities ("aalborg", "riga", "copenhagen", "lasvegas"), scaled by
// scale (1.0 = paper size).
func CityPreset(name string, scale float64, seed int64) (CityParams, error) {
	return gen.CityPreset(name, scale, seed)
}

// GenerateCity builds a seeded city-like road network.
func GenerateCity(p CityParams) (*Graph, error) { return gen.City(p) }

// NetworkStats measures a network (Table III columns).
func NetworkStats(g *Graph) CityStats { return gen.Stats(g) }

// SampleCustomers draws m customer nodes uniformly (without replacement
// while possible).
func SampleCustomers(g *Graph, m int, rng *rand.Rand) []int32 {
	return gen.SampleCustomers(g, m, rng)
}

// SampleFacilities draws l distinct candidate facility nodes with
// capacities from capFn.
func SampleFacilities(g *Graph, l int, rng *rand.Rand, capFn func(j int) int) []Facility {
	return gen.SampleFacilities(g, l, rng, capFn)
}

// AllNodesFacilities makes every node a candidate (the paper's F_p = V)
// with capacities from capFn.
func AllNodesFacilities(g *Graph, capFn func(j int) int) []Facility {
	return gen.AllNodesFacilities(g, capFn)
}

// UniformCapacity yields the constant capacity c.
func UniformCapacity(c int) func(int) int { return gen.UniformCapacity(c) }

// RandomCapacity yields uniform capacities in [lo, hi].
func RandomCapacity(lo, hi int, rng *rand.Rand) func(int) int {
	return gen.RandomCapacity(lo, hi, rng)
}

// NewCoworkingScenario generates venues and Voronoi/triangle-distributed
// customers on g (§VII-F.1).
func NewCoworkingScenario(g *Graph, cfg CoworkingConfig) (*CoworkingScenario, error) {
	return realsim.Coworking(g, cfg)
}

// DistrictCustomers places customers proportionally to random district
// populations (§VII-F.1b).
func DistrictCustomers(g *Graph, cfg DistrictConfig) ([]int32, error) {
	return realsim.DistrictCustomers(g, cfg)
}

// NewBikesScenario generates docking stations and flow-divergence
// distributed bikes on g (§VII-F.2).
func NewBikesScenario(g *Graph, cfg BikesConfig) (*BikesScenario, error) {
	return realsim.Bikes(g, cfg)
}

// --- instance serialization -----------------------------------------------

// WriteInstance serializes an instance in the module's text format.
func WriteInstance(w io.Writer, inst *Instance) error { return data.WriteInstance(w, inst) }

// ReadInstance parses the text format.
func ReadInstance(r io.Reader) (*Instance, error) { return data.ReadInstance(r) }

// LargestComponent returns the nodes of the largest connected component;
// sampling workloads from it guarantees mutual reachability.
func LargestComponent(g *Graph) []int32 { return gen.LargestComponent(g) }

// SampleCustomersFrom draws m customers from a node pool.
func SampleCustomersFrom(nodes []int32, m int, rng *rand.Rand) []int32 {
	return gen.SampleCustomersFrom(nodes, m, rng)
}

// SampleFacilitiesFrom draws l distinct candidate facilities from a node
// pool with capacities from capFn.
func SampleFacilitiesFrom(nodes []int32, l int, rng *rand.Rand, capFn func(j int) int) []Facility {
	return gen.SampleFacilitiesFrom(nodes, l, rng, capFn)
}

// NodesFacilities makes every node of the pool a candidate facility.
func NodesFacilities(nodes []int32, capFn func(j int) int) []Facility {
	return gen.NodesFacilities(nodes, capFn)
}

// --- dynamic reallocation ---------------------------------------------------

// Reallocator maintains an MCFS solution while the customer population
// changes (the paper's "dynamic reallocation" motivation): arrivals are
// assigned incrementally along one optimal augmenting path each,
// departures are batched into a rebuild, and the facility selection is
// re-solved when it saturates or the cost drifts.
type Reallocator = dynamic.Reallocator

// ReallocatorStats counts a Reallocator's work.
type ReallocatorStats = dynamic.Stats

// NewReallocator performs one full solve of the instance and returns a
// Reallocator tracking it. driftFactor (>1) bounds the tolerated cost
// drift before a full re-selection; 0 picks the default 1.5, negative
// disables drift-triggered re-solves.
func NewReallocator(inst *Instance, driftFactor float64, opts ...Option) (*Reallocator, error) {
	return NewReallocatorCtx(context.Background(), inst, driftFactor, opts...)
}

// NewReallocatorCtx is NewReallocator with cooperative cancellation. The
// context is retained by the Reallocator and governs the initial full
// solve and every later operation (arrivals, rebuilds, re-selections);
// rebind it with the Reallocator's SetContext. A cancelled operation
// returns ctx.Err() and marks the matching stale; the next operation
// under a live context rebuilds it, so the Reallocator stays usable.
func NewReallocatorCtx(ctx context.Context, inst *Instance, driftFactor float64, opts ...Option) (*Reallocator, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return dynamic.NewCtx(ctx, inst, dynamic.Options{Core: o.core, DriftFactor: driftFactor})
}

// ReallocatorSnapshot is a restartable JSON capture of a Reallocator's
// dynamic state (live customers with their handles, the open selection,
// the drift baseline and work counters). Produce one with the
// Reallocator's Snapshot method, persist it with its Write method, parse
// it back with ReadReallocatorSnapshot, and reconstruct the Reallocator
// with RestoreReallocator. Snapshots embed an instance fingerprint and
// restore only onto an identical instance, reproducing the snapshotted
// objective exactly.
type ReallocatorSnapshot = dynamic.Snapshot

// PublishedAssignment is an immutable point-in-time view of the
// assignment a Reallocator is serving, built by its Publish method for
// lock-free concurrent reads (e.g. behind an atomic pointer swapped by a
// single writer).
type PublishedAssignment = dynamic.Published

// ReadReallocatorSnapshot parses and structurally validates a snapshot
// previously persisted with ReallocatorSnapshot.Write.
func ReadReallocatorSnapshot(r io.Reader) (*ReallocatorSnapshot, error) {
	return dynamic.ReadSnapshot(r)
}

// RestoreReallocator reconstructs a Reallocator from a snapshot taken
// against an identical instance; see NewReallocator for driftFactor.
func RestoreReallocator(inst *Instance, s *ReallocatorSnapshot, driftFactor float64, opts ...Option) (*Reallocator, error) {
	return RestoreReallocatorCtx(context.Background(), inst, s, driftFactor, opts...)
}

// RestoreReallocatorCtx is RestoreReallocator with cooperative
// cancellation; the context is retained as in NewReallocatorCtx.
func RestoreReallocatorCtx(ctx context.Context, inst *Instance, s *ReallocatorSnapshot, driftFactor float64, opts ...Option) (*Reallocator, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return dynamic.RestoreCtx(ctx, inst, s, dynamic.Options{Core: o.core, DriftFactor: driftFactor})
}

// --- rendering --------------------------------------------------------------

// RenderStyle controls RenderSVG output.
type RenderStyle = render.Style

// DefaultRenderStyle returns the standard rendering style.
func DefaultRenderStyle() RenderStyle { return render.Default() }

// RenderSVG draws the instance — and, when sol is non-nil, its solution —
// as a standalone SVG document (network grey, customers red, candidate
// facilities blue, selected facilities solid, assignments linked).
func RenderSVG(w io.Writer, inst *Instance, sol *Solution, style RenderStyle) error {
	return render.SVG(w, inst, sol, style)
}

// --- local-search polish -----------------------------------------------------

// ImproveStats reports local-search work counters.
type ImproveStats = localsearch.Stats

// Improve post-optimizes a solution with single-swap local search
// (exchange one open facility for a nearby unselected candidate,
// rebuilding the optimal assignment; first-improvement, bounded moves).
// maxMoves 0 picks the default budget of 2·k. The returned solution is
// never worse than the input.
func Improve(inst *Instance, sol *Solution, maxMoves int, opts ...Option) (*Solution, ImproveStats, error) {
	return ImproveCtx(context.Background(), inst, sol, maxMoves, opts...)
}

// ImproveCtx is Improve with cooperative cancellation, checked before
// every candidate swap. Local search always holds a verified feasible
// incumbent (the input or the best accepted swap so far), so a
// cancelled run returns that incumbent alongside ctx.Err() — the polish
// achieved up to the cut is kept. WithTimeBudget adds a deadline to
// ctx, turning the search into an anytime polish pass.
func ImproveCtx(ctx context.Context, inst *Instance, sol *Solution, maxMoves int, opts ...Option) (*Solution, ImproveStats, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, ImproveStats{}, err
	}
	ctx, cancel := o.deadlineCtx(ctx)
	defer cancel()
	return localsearch.ImproveCtx(ctx, inst, sol, localsearch.Options{MaxMoves: maxMoves, Core: o.core})
}

// --- DIMACS road-network interchange ----------------------------------------

// ReadDIMACSGraph parses a 9th-DIMACS-challenge shortest-path graph (and
// optional coordinate companion; pass nil to skip). undirected collapses
// the symmetric arc pairs of road-network distributions.
func ReadDIMACSGraph(gr io.Reader, co io.Reader, undirected bool) (*Graph, error) {
	return data.ReadDIMACSGraph(gr, co, undirected)
}

// WriteDIMACSGraph emits a graph (and, when coW is non-nil and
// coordinates exist, their companion file) in DIMACS format.
func WriteDIMACSGraph(grW io.Writer, coW io.Writer, g *Graph) error {
	return data.WriteDIMACSGraph(grW, coW, g)
}

// --- point-to-point distance oracle ------------------------------------------

// DistanceOracle is an exact point-to-point shortest-path oracle (A*
// with landmark bounds) for ad-hoc queries against a network — e.g.,
// auditing individual customer→facility trips of a solution. Not safe
// for concurrent use; its Clone method hands each goroutine an
// independent oracle sharing the preprocessed landmark tables.
type DistanceOracle = graph.ALT

// NewDistanceOracle preprocesses numLandmarks landmarks (one Dijkstra
// each); undirected networks only.
func NewDistanceOracle(g *Graph, numLandmarks int, seed int64) (*DistanceOracle, error) {
	return graph.NewALT(g, numLandmarks, seed)
}

// WriteGeoJSON exports an instance and optional solution as a GeoJSON
// FeatureCollection (customers and facilities as Points with properties,
// assignments as LineStrings) for use in standard mapping tools.
func WriteGeoJSON(w io.Writer, inst *Instance, sol *Solution) error {
	return render.GeoJSON(w, inst, sol)
}
