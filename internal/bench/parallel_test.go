package bench

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestPoolOrderAndBound checks the two pool invariants everything else
// rests on: rows replay in cell-submission order regardless of the order
// cells finish in, and no more than Workers cells run at once.
func TestPoolOrderAndBound(t *testing.T) {
	const cells, workers = 40, 3
	var running, peak int32
	p := newPool(Config{Workers: workers})
	for i := 0; i < cells; i++ {
		i := i
		p.cell(func(emit func(Row)) error {
			cur := atomic.AddInt32(&running, 1)
			for {
				old := atomic.LoadInt32(&peak)
				if cur <= old || atomic.CompareAndSwapInt32(&peak, old, cur) {
					break
				}
			}
			// Emit two rows so multi-row cells stay contiguous in the output.
			emit(Row{Exp: "test", XVal: float64(i)})
			emit(Row{Exp: "test", XVal: float64(i) + 0.5})
			atomic.AddInt32(&running, -1)
			return nil
		})
	}
	var got []float64
	if err := p.drain(func(r Row) { got = append(got, r.XVal) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2*cells {
		t.Fatalf("rows = %d, want %d", len(got), 2*cells)
	}
	for i := 0; i < cells; i++ {
		if got[2*i] != float64(i) || got[2*i+1] != float64(i)+0.5 {
			t.Fatalf("row order broken at cell %d: %v %v", i, got[2*i], got[2*i+1])
		}
	}
	if peak > workers {
		t.Fatalf("peak concurrency %d exceeds Workers=%d", peak, workers)
	}
}

// TestPoolErrorSemantics: the first error in submission order wins, and
// rows of cells after the failed one are dropped — exactly what a serial
// runner aborting mid-loop would have produced.
func TestPoolErrorSemantics(t *testing.T) {
	boom := errors.New("boom")
	p := newPool(Config{Workers: 4})
	p.cell(func(emit func(Row)) error { emit(Row{XVal: 0}); return nil })
	p.cell(func(emit func(Row)) error { return boom })
	p.cell(func(emit func(Row)) error { emit(Row{XVal: 2}); return nil })
	var got []float64
	err := p.drain(func(r Row) { got = append(got, r.XVal) })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("rows = %v, want only the pre-error cell's row", got)
	}
}

// TestParallelDeterminism asserts the tentpole guarantee: a Workers=4
// run emits the identical row stream to a serial run for the same seed,
// across two experiment ids (a size sweep and a k sweep). Runtime is
// wall-clock and excluded, exactly as mcfsbench -notimes excludes it.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two experiments twice")
	}
	base := Config{Scale: 0.02, Seed: 7, SkipExact: true}
	collect := func(cfg Config) []string {
		t.Helper()
		var rows []string
		for _, id := range []string{"F6a", "F7a"} {
			err := Run(id, cfg, func(r Row) {
				r.Runtime = 0
				rows = append(rows, fmt.Sprintf("%+v", r))
			})
			if err != nil {
				t.Fatalf("%s (workers=%d): %v", id, cfg.Workers, err)
			}
		}
		return rows
	}
	serial := collect(Config{Scale: base.Scale, Seed: base.Seed, SkipExact: true, Workers: 1})
	parallel := collect(Config{Scale: base.Scale, Seed: base.Seed, SkipExact: true, Workers: 4})
	if len(serial) != len(parallel) {
		t.Fatalf("row count differs: serial %d vs parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("row %d differs:\nserial:   %s\nparallel: %s", i, serial[i], parallel[i])
		}
	}
}
