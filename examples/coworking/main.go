// Coworking reproduces the paper's §VII-F.1 scenario shape: select
// meeting places for coworkers among city venues (cafés/restaurants)
// whose daily operational hours act as nonuniform capacities.
//
// The demo generates a Las-Vegas-like road network, simulates venues
// with Yelp-style occupancies, distributes coworkers by the paper's
// network-Voronoi triangle technique, and compares the Direct and
// Uniform-First WMA strategies against the Hilbert baseline across a
// sweep of budgets k (the shape of Fig. 12a).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"mcfs"
)

func main() {
	prm, err := mcfs.CityPreset("lasvegas", 0.02, 11)
	if err != nil {
		log.Fatal(err)
	}
	g, err := mcfs.GenerateCity(prm)
	if err != nil {
		log.Fatal(err)
	}
	st := mcfs.NetworkStats(g)
	fmt.Printf("las-vegas-like network: %d nodes, %d edges, avg edge %.1f m\n",
		st.Nodes, st.Edges, st.AvgEdgeLength)

	// ~400 venues with operational-hour capacities, 500 coworkers.
	sc, err := mcfs.NewCoworkingScenario(g, mcfs.CoworkingConfig{
		Venues: 400, Customers: 500, MeanHours: 9, Omega: 0.5, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %d venues (avg hours as capacity), %d coworkers\n\n", len(sc.Venues), len(sc.Customers))

	sweep := []int{80, 120, 160, 200}
	if os.Getenv("MCFS_EXAMPLE_QUICK") != "" {
		sweep = sweep[:2]
	}
	fmt.Printf("%6s  %12s  %12s  %12s\n", "k", "WMA direct", "WMA UF", "Hilbert")
	for _, k := range sweep {
		inst := sc.Instance(g, k)
		if ok, _ := inst.Feasible(); !ok {
			fmt.Printf("%6d  infeasible at this budget\n", k)
			continue
		}
		direct := mustSolve(inst, func() (*mcfs.Solution, error) { return mcfs.Solve(inst) })
		uf := mustSolve(inst, func() (*mcfs.Solution, error) { return mcfs.SolveUniformFirst(inst) })
		hil := mustSolve(inst, func() (*mcfs.Solution, error) { return mcfs.SolveHilbert(inst) })
		fmt.Printf("%6d  %12d  %12d  %12d\n", k, direct.Objective, uf.Objective, hil.Objective)
	}

	// Per-iteration statistics, as in the paper's Fig. 12b.
	fmt.Println("\nWMA iteration statistics (k = 120):")
	inst := sc.Instance(g, 120)
	_, err = mcfs.Solve(inst, mcfs.WithProgress(func(s mcfs.IterationStats) {
		fmt.Printf("  iter %2d: covered %4d/%d  match %8s  cover %8s  edges %d\n",
			s.Iteration, s.Covered, inst.M(),
			s.MatchTime.Round(time.Microsecond), s.CoverTime.Round(time.Microsecond), s.Edges)
	}))
	if err != nil {
		log.Fatal(err)
	}
}

func mustSolve(inst *mcfs.Instance, fn func() (*mcfs.Solution, error)) *mcfs.Solution {
	sol, err := fn()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		log.Fatal(err)
	}
	return sol
}
