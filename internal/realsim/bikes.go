package realsim

import (
	"fmt"
	"math"
	"math/rand"

	"mcfs/internal/data"
	"mcfs/internal/graph"
)

// BikesConfig parameterizes the dockless-bike-sharing scenario
// (§VII-F.2): docking stations with capacities, and scattered bikes
// (customers) placed by the flow-divergence-variance pipeline.
type BikesConfig struct {
	Stations   int // candidate docking stations (the paper uses 6000)
	Bikes      int // scattered bikes = customers (1000)
	MinCap     int // station capacity range
	MaxCap     int
	Attractors int // commute destinations shaping the flow field
	Seed       int64
}

// BikesScenario is the generated instance material; K is swept by the
// experiment.
type BikesScenario struct {
	Stations []data.Facility
	Bikes    []int32
	// DemandVariance is the per-node normalized docking-demand proxy
	// (exposed for inspection and tests).
	DemandVariance []float64
}

// Bikes generates the scenario. The pipeline follows the paper exactly:
// a per-hour bike-flow vector field g over street segments (here driven
// by commute attractors with morning-in/evening-out rhythms plus noise,
// standing in for the city's traffic-counter interpolation), the
// divergence ∇g at every node per hour (bikes parked there during that
// hour), the variance of ∇g across the 24 hours as the docking-demand
// proxy, and a normalized distribution from which bike positions are
// drawn.
func Bikes(g *graph.Graph, cfg BikesConfig) (*BikesScenario, error) {
	if !g.HasCoords() {
		return nil, fmt.Errorf("realsim: bike flow field requires coordinates")
	}
	if cfg.Stations < 1 || cfg.Stations > g.N() {
		return nil, fmt.Errorf("realsim: station count %d out of range (n=%d)", cfg.Stations, g.N())
	}
	if cfg.MinCap <= 0 {
		cfg.MinCap = 5
	}
	if cfg.MaxCap < cfg.MinCap {
		cfg.MaxCap = cfg.MinCap + 20
	}
	if cfg.Attractors < 1 {
		cfg.Attractors = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Stations at distinct nodes.
	perm := rng.Perm(g.N())
	stations := make([]data.Facility, cfg.Stations)
	for j := range stations {
		stations[j] = data.Facility{
			Node:     int32(perm[j]),
			Capacity: cfg.MinCap + rng.Intn(cfg.MaxCap-cfg.MinCap+1),
		}
	}

	// Commute attractors with random weights.
	minX, maxX, minY, maxY := coordExtent(g)
	type attractor struct{ x, y, w float64 }
	atts := make([]attractor, cfg.Attractors)
	for i := range atts {
		atts[i] = attractor{
			x: minX + rng.Float64()*(maxX-minX),
			y: minY + rng.Float64()*(maxY-minY),
			w: 0.5 + rng.Float64(),
		}
	}

	// Hourly rhythm: positive = flow toward attractors (morning rush),
	// negative = outbound (evening rush).
	rhythm := func(h int) float64 {
		morning := math.Exp(-sq(float64(h)-8.5) / 4)
		evening := math.Exp(-sq(float64(h)-17.5) / 4)
		return morning - evening
	}

	// Per-hour divergence at each node: sum of signed flows of incident
	// segments. Flow on a segment (u→v by increasing node id) is the
	// projection of the attractor field on the segment direction times
	// the hour rhythm, plus noise. Divergence convention: flow along
	// u→v leaves u (negative contribution) and enters v (positive).
	n := g.N()
	mean := make([]float64, n)
	m2 := make([]float64, n)
	edgeNoise := make(map[[2]int32]float64)
	const hours = 24
	for h := 0; h < hours; h++ {
		div := make([]float64, n)
		rh := rhythm(h)
		for u := int32(0); u < int32(n); u++ {
			ux, uy := g.Coord(u)
			g.Neighbors(u, func(v int32, _ int64) bool {
				if v <= u {
					return true // each undirected segment once
				}
				vx, vy := g.Coord(v)
				dx, dy := vx-ux, vy-uy
				norm := math.Hypot(dx, dy)
				if norm == 0 {
					return true
				}
				// Field at segment midpoint: weighted pull toward attractors.
				mx, my := (ux+vx)/2, (uy+vy)/2
				var fx, fy float64
				for _, a := range atts {
					ax, ay := a.x-mx, a.y-my
					an := math.Hypot(ax, ay) + 1
					fx += a.w * ax / an
					fy += a.w * ay / an
				}
				key := [2]int32{u, v}
				noise, ok := edgeNoise[key]
				if !ok {
					noise = rng.NormFloat64() * 0.1
					edgeNoise[key] = noise
				}
				flow := rh*(fx*dx+fy*dy)/norm + noise*rh
				div[u] -= flow
				div[v] += flow
				return true
			})
		}
		for v := 0; v < n; v++ {
			delta := div[v] - mean[v]
			mean[v] += delta / float64(h+1)
			m2[v] += delta * (div[v] - mean[v])
		}
	}
	variance := make([]float64, n)
	var total float64
	for v := 0; v < n; v++ {
		variance[v] = m2[v] / hours
		total += variance[v]
	}
	if total <= 0 {
		return nil, fmt.Errorf("realsim: degenerate bike demand distribution")
	}

	bikes := sampleByWeight(rng, variance, cfg.Bikes)
	return &BikesScenario{Stations: stations, Bikes: bikes, DemandVariance: variance}, nil
}

// Instance assembles a data.Instance with budget k.
func (s *BikesScenario) Instance(g *graph.Graph, k int) *data.Instance {
	return &data.Instance{G: g, Customers: s.Bikes, Facilities: s.Stations, K: k}
}

func sq(x float64) float64 { return x * x }
