package core_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"mcfs/internal/baseline"
	"mcfs/internal/core"
	"mcfs/internal/solver"
	"mcfs/internal/testutil"
)

// TestSolvePathsConcurrent runs every solve path many times in parallel
// against ONE shared *data.Instance (and therefore one shared
// *graph.Graph) and asserts each call reproduces its serial result.
// This is the invariant the parallel bench harness depends on: solvers
// treat the instance as immutable. Run under -race.
func TestSolvePathsConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Small enough for branch & bound to finish well inside its budget;
	// the race coverage comes from the concurrency, not the size.
	inst := testutil.RandomInstance(rng, testutil.Params{
		MinNodes: 40, MaxNodes: 60,
		MaxCustomers: 12, MaxFacilities: 12, MaxCapacity: 3, MaxWeight: 30,
	})

	type path struct {
		name string
		run  func() (int64, error)
	}
	paths := []path{
		{"wma", func() (int64, error) {
			sol, err := core.Solve(inst, core.Options{})
			if err != nil {
				return 0, err
			}
			return sol.Objective, nil
		}},
		{"wma-uf", func() (int64, error) {
			sol, err := core.SolveUniformFirst(inst, core.Options{})
			if err != nil {
				return 0, err
			}
			return sol.Objective, nil
		}},
		{"naive", func() (int64, error) {
			sol, err := baseline.Naive(inst, 5, core.Options{})
			if err != nil {
				return 0, err
			}
			return sol.Objective, nil
		}},
		{"hilbert", func() (int64, error) {
			sol, err := baseline.Hilbert(inst, core.Options{})
			if err != nil {
				return 0, err
			}
			return sol.Objective, nil
		}},
		{"brnn", func() (int64, error) {
			sol, err := baseline.BRNN(inst, core.Options{})
			if err != nil {
				return 0, err
			}
			return sol.Objective, nil
		}},
		{"exact", func() (int64, error) {
			res, err := solver.BranchAndBound(inst, solver.Options{TimeBudget: 30 * time.Second})
			if err != nil {
				return 0, err
			}
			return res.Solution.Objective, nil
		}},
	}

	// Serial reference pass.
	want := make(map[string]int64, len(paths))
	for _, p := range paths {
		obj, err := p.run()
		if err != nil {
			t.Fatalf("serial %s: %v", p.name, err)
		}
		want[p.name] = obj
	}

	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(paths))
	for r := 0; r < rounds; r++ {
		for _, p := range paths {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				obj, err := p.run()
				if err != nil {
					errs <- err
					return
				}
				if obj != want[p.name] {
					t.Errorf("concurrent %s: objective = %d, want %d (shared instance mutated?)",
						p.name, obj, want[p.name])
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The shared instance still verifies its own solutions afterwards.
	sol, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		t.Fatalf("instance corrupted after concurrent solves: %v", err)
	}
}

// TestEvalObjectiveConcurrent hammers the read-only evaluation helpers
// on a shared instance+solution; run under -race.
func TestEvalObjectiveConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := testutil.RandomInstance(rng, testutil.Params{
		MinNodes: 40, MaxNodes: 80,
		MaxCustomers: 15, MaxFacilities: 20, MaxCapacity: 3, MaxWeight: 20,
	})
	sol, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := inst.CheckSolution(sol); err != nil {
				t.Errorf("CheckSolution: %v", err)
			}
			if ok, _ := inst.Feasible(); !ok {
				t.Error("Feasible flipped on shared instance")
			}
		}()
	}
	wg.Wait()
}
