package mcfs

import (
	"context"
	"errors"
	"fmt"

	"mcfs/internal/baseline"
	"mcfs/internal/core"
)

// Algorithm names one of the package's solvers in the public registry.
// The registry gives commands and experiment harnesses a single dispatch
// point — parse a name with ParseAlgorithm, enumerate the catalogue with
// Algorithms, and run any entry uniformly through Algorithm.Solve —
// instead of each maintaining its own per-algorithm switch.
type Algorithm string

// The registered algorithms, in catalogue order.
const (
	// AlgorithmWMA is the Wide Matching Algorithm (Solve), the paper's
	// primary contribution.
	AlgorithmWMA Algorithm = "wma"
	// AlgorithmUniformFirst is WMA under the Uniform-First strategy for
	// nonuniform capacities (SolveUniformFirst).
	AlgorithmUniformFirst Algorithm = "uf"
	// AlgorithmHilbert is the Hilbert space-filling-curve bucketing
	// baseline (SolveHilbert); it requires node coordinates.
	AlgorithmHilbert Algorithm = "hilbert"
	// AlgorithmBRNN is the bichromatic-reverse-nearest-neighbor placement
	// baseline (SolveBRNN).
	AlgorithmBRNN Algorithm = "brnn"
	// AlgorithmNaive is WMA Naïve, the greedy no-rewiring ablation
	// (SolveNaive); seed it with WithSeed.
	AlgorithmNaive Algorithm = "naive"
	// AlgorithmExact is the branch-and-bound exact solver (SolveExact);
	// bound it with WithTimeBudget / WithNodeLimit.
	AlgorithmExact Algorithm = "exact"
	// AlgorithmExhaustive enumerates every k-subset (SolveExhaustive);
	// tiny instances only.
	AlgorithmExhaustive Algorithm = "exhaustive"
)

// algorithmEntry couples an Algorithm with its uniform runner. The note
// conveys per-run qualifications that are not part of the Solution —
// e.g. optimality proof or timeout provenance for the exact solver.
type algorithmEntry struct {
	run func(ctx context.Context, inst *Instance, opts ...Option) (*Solution, string, error)
}

// heuristic adapts an internal heuristic solver to the uniform registry
// shape: options are built (and validated) once, the WithTimeBudget
// deadline is layered onto the caller's context, and the note is empty.
// Together with the exact/exhaustive entries below this makes the table
// the only place that binds public algorithm names to internal
// implementations — the root Solve*Ctx wrappers all route through
// Algorithm.Solve (enforced by mcfslint's api-parity rule).
func heuristic(run func(ctx context.Context, inst *Instance, o options) (*Solution, error)) algorithmEntry {
	return algorithmEntry{run: func(ctx context.Context, inst *Instance, opts ...Option) (*Solution, string, error) {
		o, err := buildOptions(opts)
		if err != nil {
			return nil, "", err
		}
		ctx, cancel := o.deadlineCtx(ctx)
		defer cancel()
		sol, err := run(ctx, inst, o)
		return sol, "", err
	}}
}

// algorithmTable is the single dispatch table behind Algorithm.Solve.
var algorithmTable = map[Algorithm]algorithmEntry{
	AlgorithmWMA: heuristic(func(ctx context.Context, inst *Instance, o options) (*Solution, error) {
		return core.SolveCtx(ctx, inst, o.core)
	}),
	AlgorithmUniformFirst: heuristic(func(ctx context.Context, inst *Instance, o options) (*Solution, error) {
		return core.SolveUniformFirstCtx(ctx, inst, o.core)
	}),
	AlgorithmHilbert: heuristic(func(ctx context.Context, inst *Instance, o options) (*Solution, error) {
		return baseline.HilbertCtx(ctx, inst, o.core)
	}),
	AlgorithmBRNN: heuristic(func(ctx context.Context, inst *Instance, o options) (*Solution, error) {
		return baseline.BRNNCtx(ctx, inst, o.core)
	}),
	AlgorithmNaive: heuristic(func(ctx context.Context, inst *Instance, o options) (*Solution, error) {
		return baseline.NaiveCtx(ctx, inst, o.seed, o.core)
	}),
	AlgorithmExact: {run: func(ctx context.Context, inst *Instance, opts ...Option) (*Solution, string, error) {
		res, err := SolveExactCtx(ctx, inst, opts...)
		if res == nil {
			return nil, "", err
		}
		if err != nil {
			if errors.Is(err, ErrTimeout) {
				// The budget expiring is the expected way to run the exact
				// solver on nontrivial instances; the incumbent is a valid
				// (just unproven) solution, so surface it as a success with
				// a qualifying note rather than an error.
				return res.Solution, "timeout (best incumbent)", nil
			}
			return res.Solution, "", err
		}
		return res.Solution, fmt.Sprintf("proven optimal, %d nodes", res.Nodes), nil
	}},
	AlgorithmExhaustive: {run: func(ctx context.Context, inst *Instance, opts ...Option) (*Solution, string, error) {
		sol, err := SolveExhaustiveCtx(ctx, inst, 0)
		return sol, "", err
	}},
}

// algorithmOrder fixes the catalogue order returned by Algorithms.
var algorithmOrder = []Algorithm{
	AlgorithmWMA,
	AlgorithmUniformFirst,
	AlgorithmHilbert,
	AlgorithmBRNN,
	AlgorithmNaive,
	AlgorithmExact,
	AlgorithmExhaustive,
}

// Algorithms returns every registered algorithm in a fixed, deterministic
// order (heuristics before exact solvers).
func Algorithms() []Algorithm {
	return append([]Algorithm(nil), algorithmOrder...)
}

// ParseAlgorithm validates a user-supplied algorithm name against the
// registry.
func ParseAlgorithm(name string) (Algorithm, error) {
	a := Algorithm(name)
	if _, ok := algorithmTable[a]; !ok {
		return "", fmt.Errorf("mcfs: unknown algorithm %q (known: %v)", name, algorithmOrder)
	}
	return a, nil
}

// Valid reports whether a names a registered algorithm.
func (a Algorithm) Valid() bool {
	_, ok := algorithmTable[a]
	return ok
}

// String returns the registry name.
func (a Algorithm) String() string { return string(a) }

// Solve dispatches to the named solver with uniform context, option, and
// result handling. The note string qualifies the run ("" for plain
// heuristic solves; "proven optimal, N nodes" or "timeout (best
// incumbent)" for the exact solver — a timed-out exact run reports its
// incumbent as a success with that note, mirroring how MIP solvers are
// used in practice). Cancellation follows the per-solver Ctx contracts:
// the error is ctx.Err() and the Solution is non-nil only for solvers
// that hold incumbents (exact, exhaustive).
func (a Algorithm) Solve(ctx context.Context, inst *Instance, opts ...Option) (*Solution, string, error) {
	e, ok := algorithmTable[a]
	if !ok {
		return nil, "", fmt.Errorf("mcfs: unknown algorithm %q (known: %v)", string(a), algorithmOrder)
	}
	return e.run(ctx, inst, opts...)
}
