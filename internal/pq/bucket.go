package pq

// Monotone is the queue contract of Dijkstra-style searches: keys are
// pushed in arbitrary order but never below the key of the last PopMin
// (nonnegative edge weights guarantee this), and DecreaseKey only ever
// lowers keys. DenseHeap, SparseHeap, and BucketQueue all satisfy it.
//
// Equal-key pop order is pinned across every implementation (the
// package's determinism contract, DESIGN.md §11): among entries with
// equal keys, the one whose key was set earliest pops first — FIFO in
// key-update time. BucketQueue gets this for free from bucket FIFO; the
// heaps enforce it with a sequence stamp. The pin is what lets the
// queue-selection heuristic swap implementations underneath a solver
// without changing its output bytes.
//
// Implementations differ in one observable: a lazy implementation
// (BucketQueue) may return superseded entries from PopMin — an (id, key)
// whose key was later decreased pops again at the old key. Every search
// in this module already skips those via its distance labels
// (d > dist[v]); new callers must do the same.
type Monotone interface {
	Len() int
	Push(id int32, key int64)
	DecreaseKey(id int32, key int64)
	PopMin() (int32, int64)
	Reset()
}

var (
	_ Monotone = (*DenseHeap)(nil)
	_ Monotone = (*SparseHeap)(nil)
	_ Monotone = (*BucketQueue)(nil)
)

// bentry is one queued (id, key) pair of a BucketQueue's overflow list.
type bentry struct {
	id  int32
	key int64
}

// BucketQueue is a monotone Dial (bucket) priority queue for positive
// integer keys: a circular wheel of span+1 FIFO buckets indexed by
// key mod (span+1), plus an overflow list for keys beyond the current
// window. With span = the maximum edge weight of the graph being
// searched, every relaxed key lands in the wheel directly and PopMin is
// O(1) amortized — no log factor, no sift swaps — which is why the
// queue-selection heuristic (graph package) prefers it whenever the
// weight range is small enough to afford the wheel.
//
// Buckets are linked lists threaded through one shared entry arena
// (ids/keys/next), so pushes never allocate per bucket — creation cost
// is a handful of wheel-sized slices and stays cheap even for the
// short-lived queues behind per-customer NN searchers.
//
// The queue is lazy: it tracks no per-id position, so DecreaseKey simply
// enqueues another entry and the superseded one surfaces later from
// PopMin at its stale key. Callers skip those via their own distance
// labels, exactly as the graph searches already do for stale heap
// entries. Len counts queued entries, including superseded ones.
//
// Keys must respect the monotone contract: pushing a key below the last
// popped key panics (it would land behind the wheel cursor and pop out
// of order). Keys at or beyond base+span+1 go to the overflow list and
// are redistributed — preserving FIFO order — as the window reaches
// them.
type BucketQueue struct {
	head   []int32 // per-bucket first arena index, -1 when empty
	tail   []int32 // per-bucket last arena index (valid while head >= 0)
	marked []bool  // bucket touched since Reset (deduplicates dirty)
	dirty  []int32 // touched bucket indexes, for O(touched) Reset

	// Entry arena: consumed entries are abandoned in place and reclaimed
	// wholesale by Reset, keeping capacity.
	ids  []int32
	keys []int64
	next []int32

	overflow []bentry
	minOver  int64 // smallest overflow key; valid while overflow is non-empty
	cur      int64 // wheel index holding the current minimum candidates
	base     int64 // key floor: no live entry has a smaller key
	size     int

	overflows int64 // pushes that landed in overflow since Reset
}

// NewBucket returns a bucket queue whose wheel spans keys
// [floor, floor+span] at any moment; span must be at least the largest
// single key increase between a popped key and a pushed one (for
// Dijkstra: the maximum edge weight) to keep pushes out of overflow.
func NewBucket(span int64) *BucketQueue {
	if span < 0 {
		span = 0
	}
	nb := span + 1
	head := make([]int32, nb)
	for i := range head {
		head[i] = -1
	}
	return &BucketQueue{
		head:   head,
		tail:   make([]int32, nb),
		marked: make([]bool, nb),
	}
}

// Len reports the number of queued entries (superseded ones included).
func (q *BucketQueue) Len() int { return q.size }

// enqueue appends an entry to bucket b's FIFO list.
func (q *BucketQueue) enqueue(b int64, id int32, key int64) {
	idx := int32(len(q.ids))
	q.ids = append(q.ids, id)
	q.keys = append(q.keys, key)
	q.next = append(q.next, -1)
	if q.head[b] < 0 {
		q.head[b] = idx
		if !q.marked[b] {
			q.marked[b] = true
			q.dirty = append(q.dirty, int32(b))
		}
	} else {
		q.next[q.tail[b]] = idx
	}
	q.tail[b] = idx
}

// Push enqueues id at the given key. Pushing an id that is already
// queued leaves the earlier entry in place as a superseded duplicate.
func (q *BucketQueue) Push(id int32, key int64) {
	if key < q.base {
		panic("pq: BucketQueue key below the monotone floor")
	}
	nb := int64(len(q.head))
	if key-q.base >= nb {
		if len(q.overflow) == 0 || key < q.minOver {
			q.minOver = key
		}
		q.overflow = append(q.overflow, bentry{id, key})
		q.overflows++
		q.size++
		return
	}
	q.enqueue(key%nb, id, key)
	q.size++
}

// DecreaseKey lowers id's key. The queue is lazy, so this is Push: the
// old entry surfaces later at its stale key and the caller skips it.
func (q *BucketQueue) DecreaseKey(id int32, key int64) { q.Push(id, key) }

// PopMin removes and returns a minimum-key entry; among equal keys the
// earliest-pushed pops first. It must not be called on an empty queue.
func (q *BucketQueue) PopMin() (int32, int64) {
	if q.size == 0 {
		panic("pq: PopMin on empty BucketQueue")
	}
	nb := int64(len(q.head))
	for scanned := int64(0); scanned < nb; scanned++ {
		b := q.cur + scanned
		if b >= nb {
			b -= nb
		}
		e := q.head[b]
		if e < 0 {
			continue
		}
		q.head[b] = q.next[e]
		q.cur = b
		q.base = q.keys[e]
		// Advancing the floor may slide overflow keys into the window;
		// redistribute them NOW, before any same-key wheel pushes can land
		// ahead of them — that eager move is what preserves the FIFO pin
		// across the overflow boundary. (Overflow keys exceed every wheel
		// key, so the entry just popped is unaffected.)
		if len(q.overflow) > 0 && q.minOver-q.base < nb {
			q.redistribute()
		}
		q.size--
		return q.ids[e], q.keys[e]
	}
	// Wheel drained, all live entries in overflow: jump the floor to the
	// smallest overflow key and redistribute.
	q.base = q.minOver
	q.cur = q.base % nb
	q.redistribute()
	return q.PopMin()
}

// redistribute moves every overflow entry now inside the wheel window
// [base, base+nb) to its bucket, preserving FIFO order, and recomputes
// the overflow minimum. It must only run when the invariant "every live
// bucket key ≤ every overflow key" still holds — i.e. immediately after
// a base advance — so appended entries land behind nothing newer.
func (q *BucketQueue) redistribute() {
	nb := int64(len(q.head))
	kept := q.overflow[:0]
	newMin := int64(-1)
	for _, e := range q.overflow {
		if e.key-q.base >= nb {
			if newMin < 0 || e.key < newMin {
				newMin = e.key
			}
			kept = append(kept, e)
			continue
		}
		q.enqueue(e.key%nb, e.id, e.key)
	}
	q.overflow = kept
	if len(kept) > 0 {
		q.minOver = newMin
	}
}

// Reset empties the queue in O(buckets touched since the last Reset),
// retaining all capacity — the property the scratch-reuse idiom
// (graph.SearchScratch) depends on.
func (q *BucketQueue) Reset() {
	for _, b := range q.dirty {
		q.head[b] = -1
		q.marked[b] = false
	}
	q.dirty = q.dirty[:0]
	q.ids = q.ids[:0]
	q.keys = q.keys[:0]
	q.next = q.next[:0]
	q.overflow = q.overflow[:0]
	q.cur, q.base, q.size = 0, 0, 0
	q.overflows = 0
}

// Overflows reports how many pushes landed in the overflow list since
// the last Reset — the observability signal that the wheel span (the
// graph's max edge weight estimate) is undersized for the key range the
// search actually produced.
func (q *BucketQueue) Overflows() int64 { return q.overflows }

// Span returns the wheel span the queue was built with (bucket count
// minus one).
func (q *BucketQueue) Span() int64 { return int64(len(q.head)) - 1 }
