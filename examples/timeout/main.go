// Timeout demonstrates deadline-bounded solving: every solver has a
// context-aware variant that polls cooperatively and returns promptly
// when the context fires. Solvers differ in what a cut-short run
// yields — the WMA family holds no feasible solution mid-run and
// returns nil, while the exact solver and the local-search polish hold
// verified incumbents and return the best one found so far (anytime
// behaviour). See "Timeouts & cancellation" in the README and
// DESIGN.md §9.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"mcfs"
)

func main() {
	n, m, l := 8000, 600, 1000
	exactBudget := 2 * time.Second
	if os.Getenv("MCFS_EXAMPLE_QUICK") != "" {
		n, m, l = 2000, 150, 300
		exactBudget = 300 * time.Millisecond
	}
	g, err := mcfs.GenerateSynthetic(mcfs.SyntheticConfig{N: n, Clusters: 12, Alpha: 1.8, Seed: 19})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20))
	pool := mcfs.LargestComponent(g)
	inst := &mcfs.Instance{
		G:          g,
		Customers:  mcfs.SampleCustomersFrom(pool, m, rng),
		Facilities: mcfs.SampleFacilitiesFrom(pool, l, rng, mcfs.UniformCapacity(40)),
		K:          25,
	}
	fmt.Printf("instance: n=%d, m=%d customers, l=%d candidates, k=%d\n\n", g.N(), inst.M(), inst.L(), inst.K)

	// 1. A deadline that cannot be met: WMA returns promptly with
	// context.DeadlineExceeded and no solution (it holds no feasible
	// incumbent until its final assignment completes).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	start := time.Now()
	sol, err := mcfs.SolveCtx(ctx, inst)
	cancel()
	fmt.Printf("WMA under a 5ms deadline: sol=%v err=%v (returned after %s)\n",
		sol != nil, err, time.Since(start).Round(time.Millisecond))
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatalf("unexpected error: %v", err)
	}

	// 2. The same deadline as an option — WithTimeBudget is sugar for a
	// context deadline on the heuristics, usable from the legacy API.
	_, err = mcfs.Solve(inst, mcfs.WithTimeBudget(5*time.Millisecond))
	fmt.Printf("WMA with WithTimeBudget(5ms): err=%v\n\n", err)

	// 3. An uncancelled run for reference.
	start = time.Now()
	best, err := mcfs.Solve(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WMA unbounded: objective %d in %s\n\n", best.Objective, time.Since(start).Round(time.Millisecond))

	// 4. The exact solver as an anytime algorithm: it holds a verified
	// incumbent from its warm start onwards, so a budget expiry still
	// yields a usable (just unproven) solution — errors.Is matches both
	// mcfs.ErrTimeout and context.DeadlineExceeded.
	start = time.Now()
	res, err := mcfs.SolveExact(inst, mcfs.WithTimeBudget(exactBudget))
	switch {
	case err == nil:
		fmt.Printf("exact: proven optimal %d (%d nodes) in %s\n",
			res.Solution.Objective, res.Nodes, time.Since(start).Round(time.Millisecond))
	case errors.Is(err, mcfs.ErrTimeout) && res != nil && res.Solution != nil:
		fmt.Printf("exact: budget hit after %s, best incumbent %d (optimal unproven)\n",
			time.Since(start).Round(time.Millisecond), res.Solution.Objective)
	default:
		fmt.Printf("exact: stopped without an incumbent: %v\n", err)
	}

	// 5. Local search is anytime too: a mid-run deadline keeps the best
	// polish achieved so far, never worse than the input.
	polished, st, err := mcfs.ImproveCtx(context.Background(), inst, best, 0,
		mcfs.WithTimeBudget(50*time.Millisecond))
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatal(err)
	}
	cut := ""
	if err != nil {
		cut = " (deadline hit mid-search)"
	}
	fmt.Printf("polish under a 50ms budget: %d -> %d after %d accepted moves%s\n",
		best.Objective, polished.Objective, st.Accepted, cut)
}
