package bench

import (
	"fmt"
	"math/rand"

	"mcfs/internal/data"
	"mcfs/internal/gen"
)

func init() {
	register("T3", runT3)
	register("T4", runT4)
	register("F10", runF10)
}

// cityScale converts the global scale into a city-size fraction: the
// default run builds each city at 5% of its Table III node count; scale
// 20 reproduces the paper's full sizes.
func cityScale(cfg Config) float64 { return 0.05 * cfg.Scale }

// runT3 generates all four city networks and reports their Table III
// statistics next to the paper's originals.
func runT3(cfg Config, emit func(Row)) error {
	paper := map[string]string{
		"aalborg":    "paper: 50961 nodes, 55748 edges, deg 2.2/7, len 30.2",
		"riga":       "paper: 287927 nodes, 322109 edges, deg 2.2/29, len 28.7",
		"copenhagen": "paper: 282826 nodes, 322349 edges, deg 2.2/10, len 32.6",
		"lasvegas":   "paper: 425759 nodes, 508522 edges, deg 2.4/21, len 50.4",
	}
	for i, name := range gen.CityNames {
		p, err := gen.CityPreset(name, cityScale(cfg), cfg.Seed)
		if err != nil {
			return err
		}
		g, err := gen.City(p)
		if err != nil {
			return err
		}
		st := gen.Stats(g)
		emit(Row{
			Exp: "T3", X: name, XVal: float64(i), Objective: -1,
			Note: fmt.Sprintf("nodes=%d edges=%d avgdeg=%.2f maxdeg=%d avglen=%.1f | %s",
				st.Nodes, st.Edges, st.AvgDegree, st.MaxDegree, st.AvgEdgeLength, paper[name]),
		})
	}
	return nil
}

// cityInstance builds a Table IV-style workload on a city: m customers,
// every largest-component node a candidate facility with capacity c.
func cityInstance(name string, cfg Config, m, k, c int) (*data.Instance, error) {
	p, err := gen.CityPreset(name, cityScale(cfg), cfg.Seed)
	if err != nil {
		return nil, err
	}
	g, err := gen.City(p)
	if err != nil {
		return nil, err
	}
	pool := gen.LargestComponent(g)
	if m > len(pool) {
		m = len(pool)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	return &data.Instance{
		G:          g,
		Customers:  gen.SampleCustomersFrom(pool, m, rng),
		Facilities: gen.NodesFacilities(pool, gen.UniformCapacity(c)),
		K:          k,
	}, nil
}

// runT4 reproduces Table IV: the four cities with m = 512, k = 51,
// c = 20, ℓ = n. The exact solver is reported as failing (the paper's
// Gurobi "did not terminate within one week"); BRNN is included as the
// paper does.
func runT4(cfg Config, emit func(Row)) error {
	for i, name := range gen.CityNames {
		inst, err := cityInstance(name, cfg, 512, 51, 20)
		if err != nil {
			return err
		}
		x, xv := name, float64(i)
		if !cfg.SkipBRNN {
			runAlgo("T4", x, xv, AlgoBRNN, inst, cfg, cfg.Seed, emit)
		}
		runAlgo("T4", x, xv, AlgoHilbert, inst, cfg, cfg.Seed, emit)
		runAlgo("T4", x, xv, AlgoNaive, inst, cfg, cfg.Seed, emit)
		runAlgo("T4", x, xv, AlgoWMA, inst, cfg, cfg.Seed, emit)
		if !cfg.SkipExact {
			runAlgo("T4", x, xv, AlgoExact, inst, cfg, cfg.Seed, emit)
		}
	}
	return nil
}

// runF10 reproduces the Aalborg scalability experiment: growing m with
// k = 0.1·m, c = 20 (o = 0.5), ℓ = n.
func runF10(cfg Config, emit func(Row)) error {
	p, err := gen.CityPreset("aalborg", 2*cityScale(cfg), cfg.Seed)
	if err != nil {
		return err
	}
	g, err := gen.City(p)
	if err != nil {
		return err
	}
	pool := gen.LargestComponent(g)
	facs := gen.NodesFacilities(pool, gen.UniformCapacity(20))
	for idx, m := range scaleInts([]int{128, 256, 512, 1024}, cfg.Scale) {
		if m > len(pool) {
			m = len(pool)
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(m)))
		inst := &data.Instance{
			G:          g,
			Customers:  gen.SampleCustomersFrom(pool, m, rng),
			Facilities: facs,
			K:          max(1, m/10),
		}
		x, xv := "m", float64(m)
		runAlgo("F10", x, xv, AlgoWMA, inst, cfg, cfg.Seed, emit)
		runAlgo("F10", x, xv, AlgoHilbert, inst, cfg, cfg.Seed, emit)
		runAlgo("F10", x, xv, AlgoNaive, inst, cfg, cfg.Seed, emit)
		if !cfg.SkipBRNN && idx == 0 {
			runAlgo("F10", x, xv, AlgoBRNN, inst, cfg, cfg.Seed, emit)
		}
	}
	return nil
}
