package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SingleWriter enforces the serving engine's concurrency architecture
// (DESIGN.md §12): the Reallocator is owned by exactly one goroutine —
// the batch writer the constructor starts — and every other goroutine
// submits operations through the op queue and waits for a reply.
// Reading that invariant off the code requires knowing which functions
// run on the writer goroutine, so the rule builds the serve package's
// internal call graph, roots the writer set at the constructor (New)
// and the launched goroutine that owns mutating work, closes it over
// "called only from writer functions", and reports any call to a
// mutating Reallocator method from outside that set. The constructor
// may start additional background goroutines — the periodic snapshot
// ticker and the drift healer submit operations through the op queue
// like any request handler — but they are accepted without joining the
// writer set, and a second launched goroutine that reaches mutating
// calls is itself a finding: two concurrent Reallocator owners.
//
// Whether a method mutates comes from the cross-package summaries
// (summary.go): a method provably writing through its receiver —
// directly or via a same-package callee, which is how Publish inherits
// flush's writes — is mutating. Without a summary (the dynamic package
// absent from the run, or an untyped load) the rule stays silent
// rather than guessing.
type SingleWriter struct{}

// Name implements Rule.
func (SingleWriter) Name() string { return "single-writer" }

// Doc implements Rule.
func (SingleWriter) Doc() string {
	return "only the batch writer goroutine may call mutating Reallocator methods; other goroutines go through the op queue"
}

// Check implements Rule for direct single-package use.
func (r SingleWriter) Check(pkg *Package, report ReportFunc) {
	r.CheckModule(newModule([]*Package{pkg}), report)
}

// reallocatorType reports whether t is (a pointer to) the dynamic
// package's Reallocator (the root package's alias resolves to it).
func reallocatorType(t types.Type) bool {
	return isNamedType(t, true, "internal/dynamic", "Reallocator") ||
		isNamedType(t, true, "dynamic", "Reallocator")
}

// CheckModule implements ModuleRule.
func (SingleWriter) CheckModule(m *Module, report ReportFunc) {
	for _, pkg := range m.Pkgs {
		if pkg.Dir != "internal/serve" || !pkg.Typed() {
			continue
		}
		checkSingleWriter(m, pkg, report)
	}
}

func checkSingleWriter(m *Module, pkg *Package, report ReportFunc) {
	decls := pkg.funcDecls()

	// The constructor anchors the analysis. Without one the writer
	// goroutine cannot be identified, so the rule stays silent.
	var ctor types.Object
	for obj := range decls {
		if obj.Name() == "New" {
			if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() == nil {
				ctor = obj
			}
		}
	}
	if ctor == nil {
		return
	}

	// The goroutines the constructor starts, in launch order. Not every
	// one is a writer: the durability layer's ticker goroutines
	// (snapshot policy, drift healer) submit operations through the op
	// queue like any request handler and never touch the Reallocator —
	// they are accepted, but deliberately NOT writer-privileged, so a
	// mutating call sneaking into one is still a finding.
	type launch struct {
		obj types.Object
		pos token.Pos
	}
	var launches []launch
	ast.Inspect(decls[ctor].decl.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if callee, _ := resolveCallee(pkg, gs.Call); callee != nil {
			if _, local := decls[callee]; local {
				launches = append(launches, launch{callee, gs.Pos()})
			}
		}
		return true
	})

	// In-package call graph, both directions, plus a per-function
	// "directly calls a mutating Reallocator method" flag. Goroutine
	// launches are starts, not calls — the launched function runs
	// concurrently and must not inherit its launcher's confinement
	// through the closure below.
	callers := make(map[types.Object]map[types.Object]bool)
	calls := make(map[types.Object][]types.Object)
	direct := make(map[types.Object]bool)
	for obj, site := range decls {
		obj := obj
		goCalls := make(map[*ast.CallExpr]bool)
		ast.Inspect(site.decl.Body, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				goCalls[gs.Call] = true
				return true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, recv := resolveCallee(pkg, call)
			if callee == nil {
				return true
			}
			if recv != nil && reallocatorType(pkg.TypeOf(recv)) {
				if fs := m.funcSummaryOf(callee); fs != nil && len(fs.writes) > 0 && fs.writes[0] == escYes {
					direct[obj] = true
				}
			}
			if _, local := decls[callee]; !local || goCalls[call] {
				return true
			}
			calls[obj] = append(calls[obj], callee)
			if callers[callee] == nil {
				callers[callee] = make(map[types.Object]bool)
			}
			callers[callee][obj] = true
			return true
		})
	}

	// reachesMutating: can fn reach a mutating Reallocator call through
	// in-package calls (go launches excluded)?
	var reachesMutating func(fn types.Object, seen map[types.Object]bool) bool
	reachesMutating = func(fn types.Object, seen map[types.Object]bool) bool {
		if direct[fn] {
			return true
		}
		if seen[fn] {
			return false
		}
		seen[fn] = true
		for _, callee := range calls[fn] {
			if reachesMutating(callee, seen) {
				return true
			}
		}
		return false
	}

	// The writer roots: the constructor (runs single-threaded before the
	// loops start) and the launched goroutines that actually own mutating
	// work. More than one mutating root is the architecture violation the
	// rule exists for — two concurrent owners of the Reallocator — and is
	// reported at the launch site.
	writers := map[types.Object]bool{ctor: true}
	mutatingRoots := 0
	for _, l := range launches {
		if !reachesMutating(l.obj, make(map[types.Object]bool)) {
			continue
		}
		writers[l.obj] = true
		mutatingRoots++
		if mutatingRoots > 1 {
			report(decls[ctor].file, l.pos,
				"constructor starts a second goroutine (%s) that mutates the Reallocator; the single-writer architecture allows exactly one batch writer", l.obj.Name())
		}
	}

	// Close the writer set: a function every caller of which is a
	// writer runs on the writer goroutine too.
	for changed := true; changed; {
		changed = false
		for obj := range decls {
			if writers[obj] || len(callers[obj]) == 0 {
				continue
			}
			all := true
			for caller := range callers[obj] {
				if !writers[caller] {
					all = false
					break
				}
			}
			if all {
				writers[obj] = true
				changed = true
			}
		}
	}

	// Report mutating Reallocator calls outside the writer set, in
	// stable position order.
	type siteOrder struct {
		obj  types.Object
		site *declSite
	}
	var ordered []siteOrder
	for obj, site := range decls {
		if !writers[obj] {
			ordered = append(ordered, siteOrder{obj, site})
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].site.decl.Pos() < ordered[j].site.decl.Pos() })
	for _, so := range ordered {
		site := so.site
		ast.Inspect(site.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, recv := resolveCallee(pkg, call)
			if callee == nil || recv == nil {
				return true
			}
			if !reallocatorType(pkg.TypeOf(recv)) {
				return true
			}
			fs := m.funcSummaryOf(callee)
			if fs == nil || len(fs.writes) == 0 || fs.writes[0] != escYes {
				return true
			}
			report(site.file, call.Pos(),
				"call to mutating Reallocator method %s outside the batch writer goroutine; submit the operation through the op queue instead", callee.Name())
			return true
		})
	}
}
