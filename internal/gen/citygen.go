package gen

import (
	"fmt"
	"math"
	"math/rand"

	"mcfs/internal/graph"
)

// CityParams calibrates a seeded city-like road network. The generator
// builds an irregular street grid of intersections (with random street
// removals and position jitter, plus a few high-degree junction stars)
// and then subdivides every street into ~SegmentLen-sized road segments,
// introducing degree-2 chain nodes — exactly the structure that gives
// OpenStreetMap exports their ≈2.2 average degree and ~30–50 m average
// edge length (Table III).
type CityParams struct {
	Name       string
	Nodes      int     // target node count (approximate, ±few %)
	SegmentLen float64 // mean road-segment length in meters
	BlockLen   float64 // mean city-block (street) length in meters
	GridRegul  float64 // 0..1: 1 = perfectly regular grid (Las Vegas), 0 = heavily perturbed
	Seed       int64
}

// CityNames lists the built-in presets, in the paper's Table III order.
var CityNames = []string{"aalborg", "riga", "copenhagen", "lasvegas"}

// CityPreset returns calibrated parameters reproducing a Table III city.
// Scale (> 0) shrinks or grows the target node count for laptop-sized
// runs; 1.0 targets the paper's sizes.
func CityPreset(name string, scale float64, seed int64) (CityParams, error) {
	if scale <= 0 {
		scale = 1
	}
	var p CityParams
	switch name {
	case "aalborg":
		p = CityParams{Name: name, Nodes: 50961, SegmentLen: 30.2, BlockLen: 151, GridRegul: 0.35}
	case "riga":
		p = CityParams{Name: name, Nodes: 287927, SegmentLen: 28.7, BlockLen: 143, GridRegul: 0.40}
	case "copenhagen":
		p = CityParams{Name: name, Nodes: 282826, SegmentLen: 32.6, BlockLen: 163, GridRegul: 0.45}
	case "lasvegas":
		p = CityParams{Name: name, Nodes: 425759, SegmentLen: 50.4, BlockLen: 202, GridRegul: 0.90}
	default:
		return CityParams{}, fmt.Errorf("gen: unknown city %q (have %v)", name, CityNames)
	}
	p.Nodes = int(float64(p.Nodes) * scale)
	if p.Nodes < 16 {
		p.Nodes = 16
	}
	p.Seed = seed
	return p, nil
}

// City generates the road network for the given parameters. It lays out
// a jittered intersection grid, drops a fraction of the streets, adds a
// few high-degree artery junctions, subdivides every street into
// ~SegmentLen pieces (the degree-2 chain nodes of OSM exports), and runs
// one calibration pass so the final node count lands near the target.
func City(p CityParams) (*graph.Graph, error) {
	if p.Nodes < 4 {
		return nil, fmt.Errorf("gen: city needs at least 4 nodes, got %d", p.Nodes)
	}
	if p.SegmentLen <= 0 || p.BlockLen < p.SegmentLen {
		return nil, fmt.Errorf("gen: invalid segment/block lengths %v/%v", p.SegmentLen, p.BlockLen)
	}
	const keep = 0.75
	t := math.Round(p.BlockLen / p.SegmentLen)
	if t < 1 {
		t = 1
	}
	side := int(math.Sqrt(float64(p.Nodes) / (1 + keep*2*(t-1))))
	if side < 2 {
		side = 2
	}
	// Calibration: rescale the grid side by the observed node-count ratio
	// until within tolerance, keeping the closest build (grid-side
	// granularity limits precision at small scales).
	var best *graph.Graph
	bestDev := math.Inf(1)
	for pass := 0; pass < 4; pass++ {
		g, total, err := buildCity(p, side)
		if err != nil {
			return nil, err
		}
		dev := float64(total) / float64(p.Nodes)
		if diff := math.Abs(dev - 1); diff < bestDev {
			best, bestDev = g, diff
		}
		if dev > 0.93 && dev < 1.07 {
			break
		}
		next := int(float64(side) / math.Sqrt(dev))
		if next == side {
			if dev > 1 {
				next = side - 1
			} else {
				next = side + 1
			}
		}
		if next < 2 {
			next = 2
		}
		side = next
	}
	return best, nil
}

func buildCity(p CityParams, side int) (*graph.Graph, int, error) {
	rng := rand.New(rand.NewSource(p.Seed))
	const keep = 0.75
	w, h := side, side

	// Intersection positions: jittered lattice.
	jitter := (1 - p.GridRegul) * 0.35 * p.BlockLen
	ix := make([]float64, w*h)
	iy := make([]float64, w*h)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			i := r*w + c
			ix[i] = float64(c)*p.BlockLen + rng.NormFloat64()*jitter
			iy[i] = float64(r)*p.BlockLen + rng.NormFloat64()*jitter
		}
	}

	// Street set: grid edges kept with probability keep (regular grids
	// keep more), plus local artery stars that reproduce the max-degree
	// tail of OSM data.
	type street struct{ a, b int32 }
	var streets []street
	pKeep := keep + p.GridRegul*0.2
	if pKeep > 0.98 {
		pKeep = 0.98
	}
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			i := int32(r*w + c)
			if c+1 < w && rng.Float64() < pKeep {
				streets = append(streets, street{i, i + 1})
			}
			if r+1 < h && rng.Float64() < pKeep {
				streets = append(streets, street{i, i + int32(w)})
			}
		}
	}
	arteries := 2 + w*h/2000
	for a := 0; a < arteries; a++ {
		hr, hc := rng.Intn(h), rng.Intn(w)
		hub := int32(hr*w + hc)
		spokes := 3 + rng.Intn(5)
		for s := 0; s < spokes; s++ {
			rr := clampInt(hr+rng.Intn(21)-10, 0, h-1)
			cc := clampInt(hc+rng.Intn(21)-10, 0, w-1)
			other := int32(rr*w + cc)
			if other != hub {
				streets = append(streets, street{hub, other})
			}
		}
	}

	// Exact subdivision plan: segs per street from its true length.
	segsOf := make([]int, len(streets))
	total := w * h
	for i, st := range streets {
		d := math.Hypot(ix[st.b]-ix[st.a], iy[st.b]-iy[st.a])
		segs := int(math.Round(d / p.SegmentLen))
		if segs < 1 {
			segs = 1
		}
		segsOf[i] = segs
		total += segs - 1
	}

	xs := make([]float64, 0, total)
	ys := make([]float64, 0, total)
	xs = append(xs, ix...)
	ys = append(ys, iy...)
	b := graph.NewBuilder(total, false)
	next := int32(w * h)
	for i, st := range streets {
		ax, ay := ix[st.a], iy[st.a]
		bx, by := ix[st.b], iy[st.b]
		segs := segsOf[i]
		prev := st.a
		px, py := ax, ay
		for s := 1; s < segs; s++ {
			fr := float64(s) / float64(segs)
			cx := ax + (bx-ax)*fr + rng.NormFloat64()*jitter*0.1
			cy := ay + (by-ay)*fr + rng.NormFloat64()*jitter*0.1
			xs = append(xs, cx)
			ys = append(ys, cy)
			b.AddEdge(prev, next, segWeight(px, py, cx, cy))
			prev, px, py = next, cx, cy
			next++
		}
		b.AddEdge(prev, st.b, segWeight(px, py, bx, by))
	}
	b.SetCoords(xs, ys)
	g, err := b.Build()
	return g, total, err
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func segWeight(x1, y1, x2, y2 float64) int64 {
	w := int64(math.Round(math.Hypot(x1-x2, y1-y2)))
	if w < 1 {
		w = 1
	}
	return w
}

// CityStats reports the Table III statistics of a generated network.
type CityStats struct {
	Nodes, Edges  int
	AvgDegree     float64
	MaxDegree     int
	AvgEdgeLength float64
}

// Stats measures a network.
func Stats(g *graph.Graph) CityStats {
	return CityStats{
		Nodes:         g.N(),
		Edges:         g.M(),
		AvgDegree:     g.AvgDegree(),
		MaxDegree:     g.MaxDegree(),
		AvgEdgeLength: g.AvgEdgeWeight(),
	}
}
